//! Quickstart: stream three FLARE-coordinated videos plus one data flow
//! over a simulated LTE cell and print the QoE summary.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use flare_core::FlareConfig;
use flare_scenarios::{CellSim, ChannelKind, SchedulerKind, SchemeKind, SimConfig};
use flare_sim::TimeDelta;

fn main() {
    // A 10 MHz cell (50 RBs/TTI), three video UEs on a mid-quality channel,
    // one greedy data UE, coordinated by FLARE with the paper's default
    // parameters (alpha = 1, delta = 4, 10 s BAI).
    let config = SimConfig::builder()
        .seed(7)
        .duration(TimeDelta::from_secs(300))
        .videos(3)
        .data_flows(1)
        .channel(ChannelKind::Static { itbs: 10 })
        .scheduler(SchedulerKind::TwoPhaseGbr)
        .scheme(SchemeKind::Flare(FlareConfig::default()))
        .build();

    let result = CellSim::new(config).run();

    println!("scheme: {}", result.scheme);
    println!("simulated: {}", result.duration);
    for v in &result.videos {
        println!(
            "video {}: avg rate {:.0} kbps, {} changes, {:.1} s stalled, {} segments",
            v.index,
            v.stats.average_rate.as_kbps(),
            v.stats.bitrate_changes,
            v.stats.underflow_time.as_secs_f64(),
            v.stats.segments,
        );
    }
    for d in &result.data {
        println!(
            "data {}: avg throughput {:.0} kbps",
            d.index,
            d.average_throughput.as_kbps()
        );
    }
    println!(
        "cell summary: avg video {:.0} kbps, Jain {:.3}, data {:.0} kbps, {} solves",
        result.average_video_rate_kbps(),
        result.jain_of_video_rates(),
        result.average_data_throughput_kbps(),
        result.solve_times.len(),
    );
}
