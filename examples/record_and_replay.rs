//! Record channel traces to disk and replay them — the workflow behind the
//! ns-3 evaluation's "trace based model" (Table III), and the way to run
//! the same radio conditions against different schemes.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example record_and_replay
//! ```

use std::fs;

use flare_core::FlareConfig;
use flare_lte::channel::TraceChannel;
use flare_lte::mobility::{generate_trace, MobilityConfig};
use flare_scenarios::{CellSim, ChannelKind, SchemeKind, SimConfig};
use flare_sim::rng::stream;
use flare_sim::TimeDelta;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_ues = 4u64;
    let duration = TimeDelta::from_secs(300);
    let mc = MobilityConfig::default();
    let dir = std::env::temp_dir().join("flare-traces");
    fs::create_dir_all(&dir)?;

    // 1. Record: drive the vehicular mobility + fading pipeline once and
    //    persist each UE's iTbs trace as a CSV document.
    let mut paths = Vec::new();
    for ue in 0..n_ues {
        let trace = generate_trace(
            &mc,
            duration,
            stream(42, "walk", ue),
            stream(42, "fade", ue),
        );
        let path = dir.join(format!("ue-{ue}.csv"));
        fs::write(&path, trace.to_csv())?;
        paths.push(path);
    }
    println!("recorded {} traces into {}", n_ues, dir.display());

    // 2. Replay: load the documents back and run two different schemes over
    //    the *identical* radio conditions.
    let docs: Vec<String> = paths
        .iter()
        .map(fs::read_to_string)
        .collect::<Result<_, _>>()?;
    for doc in &docs {
        // Validate before use; a corrupted file fails loudly here.
        TraceChannel::from_csv(doc)?;
    }

    for scheme in [
        SchemeKind::Flare(FlareConfig::default()),
        SchemeKind::Festive,
    ] {
        let config = SimConfig::builder()
            .seed(42)
            .duration(duration)
            .videos(n_ues as usize)
            .channel(ChannelKind::Traces(docs.clone()))
            .scheme(scheme)
            .build();
        let r = CellSim::new(config).run();
        println!(
            "{:<8} over recorded traces: avg rate {:.0} kbps, {:.1} changes/client, Jain {:.3}",
            r.scheme,
            r.average_video_rate_kbps(),
            r.average_bitrate_changes(),
            r.jain_of_video_rates(),
        );
    }
    println!("\nSame channels, different control planes: any difference in the");
    println!("numbers above is attributable to the adaptation scheme alone.");
    Ok(())
}
